/**
 * @file
 * Unit and property tests for the set-associative cache.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <tuple>
#include <vector>

#include "cache/cache.h"
#include "stats/rng.h"

namespace ibs {
namespace {

CacheConfig
cfg(uint64_t size, uint32_t assoc, uint32_t line,
    Replacement repl = Replacement::LRU)
{
    return CacheConfig{size, assoc, line, repl};
}

TEST(CacheConfig, DerivedGeometry)
{
    const CacheConfig c = cfg(8 * 1024, 2, 32);
    EXPECT_EQ(c.numSets(), 128u);
    EXPECT_EQ(c.lineShift(), 5u);
    EXPECT_EQ(c.lineAddr(0x1234), 0x1220u);
    EXPECT_EQ(c.setIndex(0x1220), (0x1220u >> 5) & 127u);
}

TEST(CacheConfig, Colors)
{
    // 8-KB direct-mapped: 2 page colors; 8-KB 2-way: 1 color.
    EXPECT_EQ(cfg(8 * 1024, 1, 32).colors(), 2u);
    EXPECT_EQ(cfg(8 * 1024, 2, 32).colors(), 1u);
    EXPECT_EQ(cfg(64 * 1024, 1, 32).colors(), 16u);
}

TEST(CacheConfig, ValidationRejectsBadGeometry)
{
    EXPECT_THROW(cfg(8 * 1024 + 1, 1, 32).validate(),
                 std::invalid_argument);
    EXPECT_THROW(cfg(8 * 1024, 1, 24).validate(),
                 std::invalid_argument);
    EXPECT_THROW(cfg(8 * 1024, 0, 32).validate(),
                 std::invalid_argument);
    EXPECT_THROW(cfg(8 * 1024, 3, 32).validate(),
                 std::invalid_argument);
    EXPECT_NO_THROW(cfg(8 * 1024, 8, 32).validate());
}

TEST(CacheConfig, ToString)
{
    EXPECT_EQ(cfg(8 * 1024, 1, 32).toString(), "8KB/1-way/32B");
    EXPECT_EQ(cfg(64 * 1024, 8, 64).toString(), "64KB/8-way/64B");
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(cfg(1024, 1, 32));
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x11c)); // Same 32-byte line.
    EXPECT_FALSE(c.access(0x120)); // Next line.
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.5);
}

TEST(Cache, DirectMappedConflict)
{
    // 1-KB direct-mapped, 32-B lines: addresses 1 KB apart conflict.
    Cache c(cfg(1024, 1, 32));
    EXPECT_FALSE(c.access(0x0));
    EXPECT_FALSE(c.access(0x400));
    EXPECT_FALSE(c.access(0x0)); // Evicted by 0x400.
    EXPECT_FALSE(c.access(0x400));
}

TEST(Cache, TwoWayRemovesPingPong)
{
    Cache c(cfg(1024, 2, 32));
    EXPECT_FALSE(c.access(0x0));
    EXPECT_FALSE(c.access(0x400));
    EXPECT_TRUE(c.access(0x0));
    EXPECT_TRUE(c.access(0x400));
}

TEST(Cache, LruEvictsLeastRecent)
{
    // 2-way set: fill both ways, touch way A, insert third line ->
    // way B (least recent) is evicted.
    Cache c(cfg(1024, 2, 32));
    ASSERT_FALSE(c.access(0x0));   // A
    ASSERT_FALSE(c.access(0x400)); // B
    ASSERT_TRUE(c.access(0x0));    // Touch A.
    ASSERT_FALSE(c.access(0x800)); // Evicts B.
    EXPECT_TRUE(c.access(0x0));
    EXPECT_FALSE(c.access(0x400));
}

TEST(Cache, FifoIgnoresTouches)
{
    Cache c(cfg(1024, 2, 32, Replacement::FIFO));
    ASSERT_FALSE(c.access(0x0));   // Inserted first.
    ASSERT_FALSE(c.access(0x400));
    ASSERT_TRUE(c.access(0x0));    // Touch does not refresh FIFO age.
    ASSERT_FALSE(c.access(0x800)); // Evicts 0x0 (oldest insertion).
    EXPECT_FALSE(c.access(0x0));
}

TEST(Cache, RandomReplacementStaysInSet)
{
    Cache c(cfg(1024, 4, 32, Replacement::Random));
    // Fill one set (set 0) beyond capacity; cache must keep exactly
    // 4 of the 8 candidate lines and all hits must be real.
    for (uint64_t i = 0; i < 8; ++i)
        c.access(i * 1024 / 4 * 4); // 0, 0x400, 0x800, ... set 0.
    EXPECT_EQ(c.validLines(), 4u);
}

TEST(CacheConfig, NonPowerOfTwoAssocIsLegal)
{
    // Only the set count must be a power of two; a 3-way cache with
    // a power-of-two set count is a legal geometry.
    EXPECT_NO_THROW(cfg(96, 3, 32).validate());   // 1 set.
    EXPECT_NO_THROW(cfg(384, 3, 32).validate());  // 4 sets.
    EXPECT_EQ(cfg(384, 3, 32).numSets(), 4u);
    // 8 KB has 256 lines: not divisible by 3, still rejected.
    EXPECT_THROW(cfg(8 * 1024, 3, 32).validate(),
                 std::invalid_argument);
    // 6 sets of 2 ways: set count not a power of two.
    EXPECT_THROW(cfg(384, 2, 32).validate(), std::invalid_argument);
}

TEST(Cache, RandomVictimMatchesUnbiasedReferenceDraw)
{
    // 3-way fully-associative cache: the victim draw cannot be a
    // plain `lfsr % 3`, which biases toward low ways within any
    // window of the LFSR sequence. The contract is a masked draw
    // with rejection: step the 16-bit Galois LFSR (seeded from the
    // geometry via Cache::lfsrSeed, so distinct caches draw
    // decorrelated sequences), mask to the next power of two >=
    // assoc, redraw until the value lands in range.
    const CacheConfig config{96, 3, 32, Replacement::Random};
    Cache c(config);

    uint64_t lfsr = Cache::lfsrSeed(config);
    auto draw = [&]() {
        for (;;) {
            const uint64_t bit = ((lfsr >> 0) ^ (lfsr >> 2) ^
                                  (lfsr >> 3) ^ (lfsr >> 5)) & 1u;
            lfsr = (lfsr >> 1) | (bit << 15);
            const uint64_t v = lfsr & 3;
            if (v < 3)
                return static_cast<uint32_t>(v);
        }
    };

    // The first three misses fill the invalid ways in order.
    std::array<uint64_t, 3> slots = {0x0, 0x20, 0x40};
    for (uint64_t addr : slots)
        c.access(addr);

    std::array<uint64_t, 3> hist{};
    for (uint64_t i = 3; i < 3000; ++i) {
        const uint64_t addr = i * 0x20;
        const uint32_t way = draw();
        ++hist[way];
        slots[way] = addr;
        ASSERT_FALSE(c.access(addr)) << i;
        for (uint64_t resident : slots)
            ASSERT_TRUE(c.contains(resident)) << i;
    }
    // The accepted draws are near-uniform over the three ways.
    for (uint64_t count : hist) {
        EXPECT_GT(count, 800u);
        EXPECT_LT(count, 1200u);
    }
}

TEST(Cache, RandomVictimIsDeterministic)
{
    const CacheConfig config{96, 3, 32, Replacement::Random};
    Cache a(config);
    Cache b(config);
    for (uint64_t i = 0; i < 500; ++i) {
        a.access(i * 0x20);
        b.access(i * 0x20);
    }
    EXPECT_EQ(a.validLineAddrs(), b.validLineAddrs());
}

TEST(Cache, ContainsDoesNotMutate)
{
    Cache c(cfg(1024, 1, 32));
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_EQ(c.accesses(), 0u);
    c.access(0x100);
    EXPECT_TRUE(c.contains(0x100));
    EXPECT_EQ(c.accesses(), 1u);
}

TEST(Cache, InsertWithoutCounting)
{
    Cache c(cfg(1024, 1, 32));
    c.insert(0x100);
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_TRUE(c.access(0x100));
}

TEST(Cache, InsertTouchesRecency)
{
    Cache c(cfg(1024, 2, 32));
    c.access(0x0);
    c.access(0x400);
    c.insert(0x0);     // Refresh line A.
    c.access(0x800);   // Should evict 0x400.
    EXPECT_TRUE(c.contains(0x0));
    EXPECT_FALSE(c.contains(0x400));
}

TEST(Cache, InvalidateSingleLine)
{
    Cache c(cfg(1024, 1, 32));
    c.access(0x100);
    c.invalidate(0x100);
    EXPECT_FALSE(c.contains(0x100));
    c.invalidate(0x200); // Absent: no-op.
}

TEST(Cache, InvalidateAllAndResetStats)
{
    Cache c(cfg(1024, 2, 32));
    for (uint64_t a = 0; a < 1024; a += 32)
        c.access(a);
    EXPECT_GT(c.validLines(), 0u);
    c.invalidateAll();
    EXPECT_EQ(c.validLines(), 0u);
    EXPECT_GT(c.accesses(), 0u);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, FullyAssociativeHoldsExactlyCapacity)
{
    Cache c(cfg(1024, 32, 32)); // Fully associative: 32 lines.
    for (uint64_t i = 0; i < 32; ++i)
        c.access(i * 32);
    // All 32 lines hit.
    for (uint64_t i = 0; i < 32; ++i)
        EXPECT_TRUE(c.access(i * 32));
    // A 33rd line evicts the LRU (line 0 after the loop above... the
    // least recently touched is line 0 of the second pass order).
    c.access(32 * 32);
    EXPECT_EQ(c.validLines(), 32u);
}

/**
 * Property sweep: on a fixed pseudo-random address stream, the miss
 * count must be monotonically non-increasing in cache size (with
 * LRU and fixed line size/assoc, bigger caches include smaller ones'
 * hits for this stream class).
 */
class CacheMonotonicity
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(CacheMonotonicity, MissesDecreaseWithSize)
{
    const auto [assoc, line] = GetParam();
    Rng rng(2024);
    std::vector<uint64_t> addrs;
    uint64_t pc = 0;
    for (int i = 0; i < 60000; ++i) {
        if (rng.nextBool(0.2))
            pc = rng.nextBounded(1 << 16) * 4;
        addrs.push_back(pc);
        pc += 4;
    }
    uint64_t prev_misses = UINT64_MAX;
    for (uint64_t size = 1024; size <= 64 * 1024; size *= 2) {
        Cache c(cfg(size, assoc, line));
        for (uint64_t a : addrs)
            c.access(a);
        EXPECT_LE(c.misses(), prev_misses)
            << "size " << size << " assoc " << assoc;
        prev_misses = c.misses();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheMonotonicity,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(16u, 32u, 64u)));

/**
 * Property sweep: for a fixed size, higher associativity with LRU
 * never increases misses *by much* on streaming workloads; we assert
 * a weaker, always-true invariant — the fully-associative cache's
 * misses lower-bound within 10% all other associativities (Belady
 * anomalies for LRU-assoc do exist but are small on random streams).
 */
class CacheAssocSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CacheAssocSweep, AssociativityReducesConflicts)
{
    const uint64_t size = GetParam();
    Rng rng(7);
    std::vector<uint64_t> addrs;
    uint64_t pc = 0;
    for (int i = 0; i < 50000; ++i) {
        if (rng.nextBool(0.25))
            pc = rng.nextBounded(1 << 14) * 4;
        addrs.push_back(pc);
        pc += 4;
    }

    auto misses = [&](uint32_t assoc) {
        Cache c(cfg(size, assoc, 32));
        for (uint64_t a : addrs)
            c.access(a);
        return c.misses();
    };

    const uint64_t dm = misses(1);
    const uint64_t eight = misses(8);
    // 8-way removes conflict misses relative to direct-mapped — the
    // exact property Figure 1's classification depends on.
    EXPECT_LE(eight, dm + dm / 10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheAssocSweep,
                         ::testing::Values(2048u, 8192u, 32768u));

/**
 * Reference model for the differential test below: the
 * array-of-structs cache this codebase used before the
 * structure-of-arrays refactor, kept deliberately naive (one struct
 * per line, linear way scan, no precomputed geometry). Replacement
 * semantics — way-order preference for invalid slots, first-oldest
 * stamp for LRU/FIFO ties, the 16-bit Galois LFSR with masked
 * rejection seeded by Cache::lfsrSeed — mirror the production cache
 * exactly; only the storage layout differs.
 */
class ReferenceAosCache
{
  public:
    explicit ReferenceAosCache(const CacheConfig &config)
        : config_(config), lfsr_(Cache::lfsrSeed(config))
    {
        config_.validate();
        lines_.resize(config_.numSets() * config_.assoc);
    }

    bool access(uint64_t addr) { return accessEx(addr).hit; }

    Cache::AccessOutcome accessEx(uint64_t addr)
    {
        ++accesses_;
        Cache::AccessOutcome outcome;
        Line *line = find(addr);
        if (line) {
            ++hits_;
            if (config_.replacement == Replacement::LRU)
                line->stamp = ++clock_;
            outcome.hit = true;
            return outcome;
        }
        Line &victim = pickVictim(addr);
        if (victim.valid) {
            outcome.evicted = true;
            outcome.victimAddr = victim.tag
                                 << config_.lineShift();
        }
        fill(victim, addr);
        return outcome;
    }

    bool contains(uint64_t addr) const
    {
        return const_cast<ReferenceAosCache *>(this)->find(addr) !=
               nullptr;
    }

    void insert(uint64_t addr)
    {
        Line *line = find(addr);
        if (line) {
            if (config_.replacement == Replacement::LRU)
                line->stamp = ++clock_;
            return;
        }
        fill(pickVictim(addr), addr);
    }

    void invalidate(uint64_t addr)
    {
        if (Line *line = find(addr))
            line->valid = false;
    }

    uint64_t accesses() const { return accesses_; }
    uint64_t hits() const { return hits_; }

    std::vector<uint64_t> validLineAddrs() const
    {
        std::vector<uint64_t> out;
        for (const Line &line : lines_) {
            if (line.valid)
                out.push_back(line.tag << config_.lineShift());
        }
        return out;
    }

  private:
    struct Line
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t stamp = 0;
    };

    Line *find(uint64_t addr)
    {
        const uint64_t tag = addr >> config_.lineShift();
        const size_t base = (tag & (config_.numSets() - 1)) *
                            config_.assoc;
        for (uint32_t w = 0; w < config_.assoc; ++w) {
            Line &line = lines_[base + w];
            if (line.valid && line.tag == tag)
                return &line;
        }
        return nullptr;
    }

    Line &pickVictim(uint64_t addr)
    {
        const uint64_t tag = addr >> config_.lineShift();
        const size_t base = (tag & (config_.numSets() - 1)) *
                            config_.assoc;
        for (uint32_t w = 0; w < config_.assoc; ++w) {
            if (!lines_[base + w].valid)
                return lines_[base + w];
        }
        if (config_.replacement == Replacement::Random) {
            uint64_t mask = 1;
            while (mask < config_.assoc)
                mask <<= 1;
            --mask;
            for (;;) {
                const uint64_t bit =
                    ((lfsr_ >> 0) ^ (lfsr_ >> 2) ^ (lfsr_ >> 3) ^
                     (lfsr_ >> 5)) & 1u;
                lfsr_ = (lfsr_ >> 1) | (bit << 15);
                const uint64_t draw = lfsr_ & mask;
                if (draw < config_.assoc)
                    return lines_[base + draw];
            }
        }
        uint32_t victim = 0;
        for (uint32_t w = 1; w < config_.assoc; ++w) {
            if (lines_[base + w].stamp < lines_[base + victim].stamp)
                victim = w;
        }
        return lines_[base + victim];
    }

    void fill(Line &line, uint64_t addr)
    {
        line.valid = true;
        line.tag = addr >> config_.lineShift();
        line.stamp = ++clock_;
    }

    CacheConfig config_;
    std::vector<Line> lines_;
    uint64_t clock_ = 0;
    uint64_t lfsr_;
    uint64_t accesses_ = 0;
    uint64_t hits_ = 0;
};

/**
 * Differential test: the SoA cache and the AoS reference must agree
 * access-by-access — hit/miss, eviction reporting, victim addresses,
 * counters and final contents — over randomized streams mixing every
 * public mutation, for every replacement policy and a range of
 * geometries (direct-mapped, power-of-two and non-power-of-two ways,
 * fully associative).
 */
class CacheSoaDifferential
    : public ::testing::TestWithParam<
          std::tuple<Replacement, std::tuple<uint64_t, uint32_t,
                                             uint32_t>>>
{
};

TEST_P(CacheSoaDifferential, MatchesAosReferenceExactly)
{
    const Replacement repl = std::get<0>(GetParam());
    const auto [size, assoc, line] = std::get<1>(GetParam());
    const CacheConfig config = cfg(size, assoc, line, repl);

    Cache soa(config);
    ReferenceAosCache aos(config);

    // Footprint ~4x the cache so capacity and conflict evictions both
    // occur; word-aligned addresses as the fetch path produces.
    const uint64_t span = size * 4;
    Rng rng(0xd1ff + size + assoc * 131 + line);
    uint64_t pc = 0;
    for (int i = 0; i < 20000; ++i) {
        if (rng.nextBool(0.2))
            pc = rng.nextBounded(span) & ~uint64_t{3};
        const uint64_t addr = pc;
        pc += 4;

        const double op = rng.nextDouble();
        if (op < 0.70) {
            EXPECT_EQ(soa.access(addr), aos.access(addr))
                << "access #" << i << " addr " << addr;
        } else if (op < 0.85) {
            const Cache::AccessOutcome got = soa.accessEx(addr);
            const Cache::AccessOutcome want = aos.accessEx(addr);
            EXPECT_EQ(got.hit, want.hit) << "accessEx #" << i;
            EXPECT_EQ(got.evicted, want.evicted) << "accessEx #" << i;
            EXPECT_EQ(got.victimAddr, want.victimAddr)
                << "accessEx #" << i;
        } else if (op < 0.92) {
            EXPECT_EQ(soa.contains(addr), aos.contains(addr))
                << "contains #" << i;
        } else if (op < 0.97) {
            soa.insert(addr);
            aos.insert(addr);
        } else {
            soa.invalidate(addr);
            aos.invalidate(addr);
        }
    }

    EXPECT_EQ(soa.accesses(), aos.accesses());
    EXPECT_EQ(soa.hits(), aos.hits());

    std::vector<uint64_t> soa_lines = soa.validLineAddrs();
    std::vector<uint64_t> aos_lines = aos.validLineAddrs();
    std::sort(soa_lines.begin(), soa_lines.end());
    std::sort(aos_lines.begin(), aos_lines.end());
    EXPECT_EQ(soa_lines, aos_lines);
    EXPECT_EQ(soa.validLines(), aos_lines.size());
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndGeometries, CacheSoaDifferential,
    ::testing::Combine(
        ::testing::Values(Replacement::LRU, Replacement::FIFO,
                          Replacement::Random),
        ::testing::Values(std::make_tuple(uint64_t{4096}, 1u, 32u),
                          std::make_tuple(uint64_t{4096}, 2u, 32u),
                          std::make_tuple(uint64_t{8192}, 4u, 64u),
                          std::make_tuple(uint64_t{6144}, 3u, 32u),
                          std::make_tuple(uint64_t{2048}, 8u, 16u),
                          // Fully associative: one set, 64 ways.
                          std::make_tuple(uint64_t{2048}, 64u,
                                          32u))));

TEST(Cache, LfsrSeedIsDeterministicSixteenBitAndNonZero)
{
    const CacheConfig config = cfg(8192, 4, 32, Replacement::Random);
    const uint64_t seed = Cache::lfsrSeed(config);
    EXPECT_EQ(seed, Cache::lfsrSeed(config));
    EXPECT_NE(seed, 0u);
    EXPECT_LE(seed, 0xffffu);
}

TEST(Cache, LfsrSeedDecorrelatesDistinctGeometries)
{
    // The point of geometry mixing: caches that coexist in one
    // simulation (an 8KB L1 and a 128KB L2, say) must not start
    // their victim LFSRs in lockstep. Not all pairs can differ (the
    // fold is 16-bit), but these common pairings must.
    const uint64_t l1 = Cache::lfsrSeed(
        cfg(8192, 2, 32, Replacement::Random));
    const uint64_t l2 = Cache::lfsrSeed(
        cfg(131072, 2, 64, Replacement::Random));
    const uint64_t l2b = Cache::lfsrSeed(
        cfg(131072, 4, 64, Replacement::Random));
    EXPECT_NE(l1, l2);
    EXPECT_NE(l2, l2b);
}

} // namespace
} // namespace ibs
