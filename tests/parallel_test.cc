/**
 * @file
 * ThreadPool / parallelFor: worker reuse, exception semantics,
 * nesting, and scheduling-independence.
 *
 * The pool exists because the long-running simulation server issues
 * thousands of parallelFor loops per process; spawn-per-call would
 * churn a thread per cell per request. The reuse test pins that
 * property: repeated loops must execute on a stable set of worker
 * threads, not fresh ones each call.
 */

#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ibs {
namespace {

/** Distinct OS thread ids observed while running one loop. */
std::set<std::thread::id>
observedIds(ThreadPool &pool, size_t total, unsigned participants)
{
    std::mutex m;
    std::set<std::thread::id> ids;
    pool.parallelFor(
        total,
        [&](size_t) {
            // A short stall makes the caller yield items to the pool
            // workers instead of racing through the loop alone.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            std::lock_guard<std::mutex> lock(m);
            ids.insert(std::this_thread::get_id());
        },
        participants);
    return ids;
}

TEST(ThreadPool, ReusesTheSameWorkersAcrossCalls)
{
    ThreadPool pool(3);
    std::set<std::thread::id> all;
    for (int call = 0; call < 8; ++call) {
        const auto ids = observedIds(pool, 32, 4);
        all.insert(ids.begin(), ids.end());
    }
    // 8 spawn-per-call loops of 3 workers would show up to 24
    // distinct non-caller ids; a persistent pool shows at most
    // workerCount() plus the calling thread.
    EXPECT_LE(all.size(), pool.workerCount() + 1u);
    EXPECT_TRUE(all.count(std::this_thread::get_id()))
        << "the calling thread must participate in its own loop";
}

TEST(ThreadPool, SharedPoolIsStableAcrossParallelForCalls)
{
    std::set<std::thread::id> all;
    std::mutex m;
    for (int call = 0; call < 6; ++call) {
        parallelFor(24, 4, [&](size_t) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            std::lock_guard<std::mutex> lock(m);
            all.insert(std::this_thread::get_id());
        });
    }
    EXPECT_LE(all.size(), ThreadPool::shared().workerCount() + 1u);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    constexpr size_t TOTAL = 10'000;
    std::vector<std::atomic<int>> hits(TOTAL);
    pool.parallelFor(TOTAL, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < TOTAL; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, FirstExceptionIsRethrownAndDrainsPromptly)
{
    ThreadPool pool(3);
    constexpr size_t TOTAL = 100'000;
    std::atomic<size_t> executed{0};
    EXPECT_THROW(
        pool.parallelFor(TOTAL,
                         [&](size_t i) {
                             if (i == 0)
                                 throw std::runtime_error("item 0");
                             executed.fetch_add(
                                 1, std::memory_order_relaxed);
                         }),
        std::runtime_error);
    // Draining stores total into the cursor, so the other
    // participants stop after at most the items they had already
    // claimed — nowhere near the full index space.
    EXPECT_LT(executed.load(), TOTAL / 2);
}

TEST(ThreadPool, PoolSurvivesAThrowingLoop)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(
                     8, [](size_t) { throw std::logic_error("boom"); }),
                 std::logic_error);
    std::atomic<size_t> ran{0};
    pool.parallelFor(64, [&](size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 64u);
}

TEST(ThreadPool, WrapperKeepsExceptionContract)
{
    EXPECT_THROW(parallelFor(16, 4,
                             [](size_t i) {
                                 if (i == 3)
                                     throw std::runtime_error("cell");
                             }),
                 std::runtime_error);
}

TEST(ThreadPool, NestedLoopsDoNotDeadlock)
{
    std::atomic<size_t> inner_total{0};
    parallelFor(4, 4, [&](size_t) {
        parallelFor(4, 4, [&](size_t) {
            inner_total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(inner_total.load(), 16u);
}

TEST(ThreadPool, ConcurrentLoopsFromManyThreadsAllComplete)
{
    // The server shape: several connection threads sharding work
    // onto one pool at once.
    constexpr int CALLERS = 6;
    constexpr size_t TOTAL = 500;
    std::vector<std::atomic<size_t>> counts(CALLERS);
    std::vector<std::thread> callers;
    for (int c = 0; c < CALLERS; ++c) {
        callers.emplace_back([&, c] {
            parallelFor(TOTAL, 4, [&, c](size_t) {
                counts[c].fetch_add(1, std::memory_order_relaxed);
            });
        });
    }
    for (auto &t : callers)
        t.join();
    for (int c = 0; c < CALLERS; ++c)
        EXPECT_EQ(counts[c].load(), TOTAL) << "caller " << c;
}

TEST(ThreadPool, ZeroWorkerPoolRunsOnCaller)
{
    ThreadPool pool(0);
    std::set<std::thread::id> ids;
    pool.parallelFor(16, [&](size_t) {
        ids.insert(std::this_thread::get_id());
    });
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

} // namespace
} // namespace ibs
