/**
 * @file
 * Tests for the sweep server: wire protocol edge cases, admission
 * control, the trace memo, graceful shutdown, and — the load-bearing
 * guarantee — that a sweep answered over the wire is bit-identical
 * to the same cells run directly through SuiteTraces::runOne.
 */

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/prom.h"
#include "obs/registry.h"
#include "serve/catalog.h"
#include "serve/client.h"
#include "serve/memo.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/runner.h"
#include "trace/trace_cache.h"
#include "workload/ibs.h"

namespace {

using namespace ibs;
using namespace ibs::serve;

constexpr uint64_t kInstr = 20000;

/** Small, admit-everything config for most tests. */
ServerConfig
testConfig()
{
    ServerConfig config;
    config.port = 0;
    config.maxInflight = 4;
    config.memoBytes = 64ull << 20;
    config.maxTotalInstructions = 1'000'000'000;
    return config;
}

std::vector<std::string>
testWorkloads()
{
    return {"gs.mach", "nroff.mach"};
}

/** The specs of testWorkloads(), in the same order. */
std::vector<WorkloadSpec>
testSpecs()
{
    std::vector<WorkloadSpec> specs;
    for (const std::string &name : testWorkloads()) {
        for (const WorkloadSpec &w : ibsSuite(OsType::Mach)) {
            if (w.name == name)
                specs.push_back(w);
        }
    }
    return specs;
}

uint64_t
statU64(const Json &cell, const char *key)
{
    return static_cast<uint64_t>(
        cell.at("stats").at(key).asNumber());
}

TEST(Serve, PingAndStatsRoundTrip)
{
    Server server(testConfig());
    server.start();
    Client client(server.port());
    EXPECT_TRUE(client.ping());

    const Json stats = client.stats();
    EXPECT_EQ(stats.at("type").asString(), "stats");
    // The ping was counted before the stats request was answered.
    EXPECT_GE(stats.at("counters").at("requests").asNumber(), 1.0);
    EXPECT_EQ(stats.at("max_inflight").asNumber(), 4.0);
    EXPECT_EQ(stats.at("memo").at("entries").asNumber(), 0.0);
}

TEST(Serve, SweepMatchesDirectRunExactly)
{
    const std::vector<std::string> config_names = {
        "economy", "high_performance_l2"};

    Server server(testConfig());
    server.start();
    Client client(server.port());
    const Client::SweepResult result = client.sweep(
        "ibs_mach", config_names, testWorkloads(), kInstr);
    ASSERT_TRUE(result.ok) << result.errorMessage;
    ASSERT_EQ(result.cells.size(), 4u);
    EXPECT_EQ(result.cellsExpected, 4u);
    EXPECT_FALSE(result.memoHit);

    // The reference: the same cells, straight through the library.
    const SuiteTraces direct(testSpecs(), kInstr, traceCacheDir(),
                             0, /*log_cache_hits=*/false);
    for (const Json &cell : result.cells) {
        const size_t c = static_cast<size_t>(
            cell.at("config_index").asNumber());
        const size_t w = static_cast<size_t>(
            cell.at("workload_index").asNumber());
        ASSERT_LT(c, config_names.size());
        ASSERT_LT(w, direct.count());
        EXPECT_EQ(cell.at("config").asString(), config_names[c]);
        EXPECT_EQ(cell.at("workload").asString(),
                  testWorkloads()[w]);

        const FetchStats expect =
            direct.runOne(w, *findConfigClass(config_names[c]));
        EXPECT_EQ(statU64(cell, "instructions"),
                  expect.instructions);
        EXPECT_EQ(statU64(cell, "cycles"), expect.cycles);
        EXPECT_EQ(statU64(cell, "stall_cycles_l1"),
                  expect.stallCyclesL1);
        EXPECT_EQ(statU64(cell, "stall_cycles_l2"),
                  expect.stallCyclesL2);
        EXPECT_EQ(statU64(cell, "l1_misses"), expect.l1Misses);
        EXPECT_EQ(statU64(cell, "l2_accesses"), expect.l2Accesses);
        EXPECT_EQ(statU64(cell, "l2_misses"), expect.l2Misses);
        EXPECT_EQ(statU64(cell, "l2_data_accesses"),
                  expect.l2DataAccesses);
        EXPECT_EQ(statU64(cell, "l2_data_misses"),
                  expect.l2DataMisses);
        EXPECT_EQ(statU64(cell, "prefetches_issued"),
                  expect.prefetchesIssued);
        EXPECT_EQ(statU64(cell, "prefetches_used"),
                  expect.prefetchesUsed);
        EXPECT_EQ(statU64(cell, "stream_buffer_hits"),
                  expect.streamBufferHits);
        EXPECT_EQ(statU64(cell, "bypass_hits"), expect.bypassHits);
    }
}

TEST(Serve, SecondIdenticalRequestHitsTheMemo)
{
    Server server(testConfig());
    server.start();
    Client client(server.port());
    const Client::SweepResult cold = client.sweep(
        "ibs_mach", {"economy"}, testWorkloads(), kInstr);
    ASSERT_TRUE(cold.ok);
    EXPECT_FALSE(cold.memoHit);

    const Client::SweepResult warm = client.sweep(
        "ibs_mach", {"economy"}, testWorkloads(), kInstr);
    ASSERT_TRUE(warm.ok);
    EXPECT_TRUE(warm.memoHit);

    const TraceMemo::Stats memo = server.memo().stats();
    EXPECT_EQ(memo.misses, 1u);
    EXPECT_GE(memo.hits, 1u);
    EXPECT_EQ(memo.entries, 1u);

    // A different instruction budget is a different key.
    const Client::SweepResult other = client.sweep(
        "ibs_mach", {"economy"}, testWorkloads(), kInstr / 2);
    ASSERT_TRUE(other.ok);
    EXPECT_FALSE(other.memoHit);
}

TEST(Serve, UnknownNamesAreStructured400s)
{
    Server server(testConfig());
    server.start();
    Client client(server.port());

    Client::SweepResult r = client.sweep(
        "no_such_suite", {"economy"}, {}, kInstr);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, 400);

    r = client.sweep("ibs_mach", {"no_such_config"}, {}, kInstr);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, 400);
    EXPECT_NE(r.errorMessage.find("no_such_config"),
              std::string::npos);

    r = client.sweep("ibs_mach", {"economy"}, {"no_such_workload"},
                     kInstr);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, 400);

    // Rejections never cost the connection.
    EXPECT_TRUE(client.ping());
    EXPECT_EQ(server.counters().protocolErrors, 3u);
}

TEST(Serve, BadJsonGetsAnErrorAndKeepsTheConnection)
{
    Server server(testConfig());
    server.start();
    Client client(server.port());

    const std::string payload = "this is not json";
    const uint32_t len = static_cast<uint32_t>(payload.size());
    const unsigned char header[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len)};
    ASSERT_TRUE(writeAll(client.fd(), header, sizeof(header)));
    ASSERT_TRUE(writeAll(client.fd(), payload.data(),
                         payload.size()));

    Json response;
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.at("type").asString(), "error");
    EXPECT_EQ(response.at("code").asNumber(), 400.0);

    // Framing stayed in sync: the next request still works.
    EXPECT_TRUE(client.ping());
}

TEST(Serve, OversizedFrameClosesTheConnection)
{
    Server server(testConfig());
    server.start();
    Client client(server.port());

    const uint32_t len = kMaxFrameBytes + 1;
    const unsigned char header[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len)};
    ASSERT_TRUE(writeAll(client.fd(), header, sizeof(header)));

    Json response;
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.at("type").asString(), "error");
    EXPECT_EQ(response.at("code").asNumber(), 400.0);
    EXPECT_FALSE(client.receive(response)); // Clean EOF.
}

TEST(Serve, TruncatedFrameClosesTheConnection)
{
    Server server(testConfig());
    server.start();
    Client client(server.port());

    // Announce 100 bytes, deliver 10, half-close.
    const unsigned char header[4] = {0, 0, 0, 100};
    ASSERT_TRUE(writeAll(client.fd(), header, sizeof(header)));
    ASSERT_TRUE(writeAll(client.fd(), "0123456789", 10));
    ::shutdown(client.fd(), SHUT_WR);

    Json response;
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.at("type").asString(), "error");
    EXPECT_FALSE(client.receive(response)); // Clean EOF.
    EXPECT_GE(server.counters().protocolErrors, 1u);
}

TEST(Serve, OverBudgetRequestIsA429)
{
    ServerConfig config = testConfig();
    config.maxTotalInstructions = 1000; // Tiny per-request ceiling.
    Server server(config);
    server.start();
    Client client(server.port());

    const Client::SweepResult r = client.sweep(
        "ibs_mach", {"economy"}, testWorkloads(), kInstr);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, 429);
    EXPECT_NE(r.errorMessage.find("IBS_SERVE_MAX_INSTR"),
              std::string::npos);
    EXPECT_EQ(server.counters().rejected, 1u);
    EXPECT_TRUE(client.ping());
}

TEST(Serve, InflightLimitRejectsWithA429)
{
    ServerConfig config = testConfig();
    config.maxInflight = 0; // Degenerate limit: reject every sweep.
    Server server(config);
    server.start();
    Client client(server.port());

    const Client::SweepResult r = client.sweep(
        "ibs_mach", {"economy"}, testWorkloads(), kInstr);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, 429);
    EXPECT_NE(r.errorMessage.find("IBS_SERVE_MAX_INFLIGHT"),
              std::string::npos);
    EXPECT_EQ(server.counters().rejected, 1u);
    EXPECT_EQ(server.counters().sweeps, 0u);
}

TEST(Serve, ShutdownRequestDrainsAndStopsTheServer)
{
    Server server(testConfig());
    server.start();
    Client client(server.port());
    // Real work first, so the drain has something behind it.
    ASSERT_TRUE(
        client.sweep("ibs_mach", {"economy"}, testWorkloads(),
                     kInstr)
            .ok);
    client.shutdown();
    EXPECT_TRUE(server.stopping());
    server.wait();
    const Server::Counters counters = server.counters();
    EXPECT_EQ(counters.sweeps, 1u);
    EXPECT_EQ(counters.cells, 2u);
}

TEST(Serve, StopWithAnIdleConnectionStillJoins)
{
    Server server(testConfig());
    server.start();
    Client client(server.port());
    ASSERT_TRUE(client.ping());
    server.requestStop();
    server.wait(); // Must not hang on the idle open connection.
    EXPECT_TRUE(server.stopping());
}

TEST(Serve, ConcurrentClientsAllComplete)
{
    Server server(testConfig());
    server.start();
    std::vector<std::thread> clients;
    std::atomic<int> ok{0};
    for (int i = 0; i < 3; ++i) {
        clients.emplace_back([&server, &ok] {
            Client client(server.port());
            const Client::SweepResult r = client.sweep(
                "ibs_mach", {"economy", "high_performance"},
                testWorkloads(), kInstr);
            if (r.ok && r.cells.size() == 4)
                ok.fetch_add(1);
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(ok.load(), 3);
    // One materialization, shared by everyone.
    EXPECT_EQ(server.memo().stats().misses, 1u);
}

TEST(Serve, MetricsExpositionValidatesAndCountsSweeps)
{
    // The request histograms live in the process-global registry;
    // clear residue from earlier tests so counts are exact.
    obs::Registry::global().reset();

    Server server(testConfig());
    server.start();
    Client client(server.port());
    ASSERT_TRUE(
        client.sweep("ibs_mach", {"economy"}, testWorkloads(), kInstr)
            .ok);

    const std::string text = client.metricsText();
    std::string error;
    EXPECT_TRUE(obs::validatePromText(text, error)) << error;

    double value = 0;
    ASSERT_TRUE(obs::findPromValue(text, "ibs_serve_requests", value));
    EXPECT_GE(value, 2.0); // The sweep, then this scrape.
    ASSERT_TRUE(obs::findPromValue(text, "ibs_serve_sweeps", value));
    EXPECT_EQ(value, 1.0);
    ASSERT_TRUE(obs::findPromValue(text, "ibs_serve_cells", value));
    EXPECT_EQ(value, 2.0);
    ASSERT_TRUE(
        obs::findPromValue(text, "ibs_serve_inflight", value));
    EXPECT_EQ(value, 0.0);

    // The sweep landed exactly once in the latency histogram, and
    // its per-phase breakdown exists alongside it.
    obs::PromHistogram hist;
    ASSERT_TRUE(obs::parsePromHistogram(
        text, "ibs_serve_sweep_latency_us", hist));
    EXPECT_EQ(hist.count, 1u);
    ASSERT_TRUE(obs::parsePromHistogram(
        text, "ibs_serve_request_latency_us", hist));
    EXPECT_GE(hist.count, 1u);
    ASSERT_TRUE(obs::parsePromHistogram(
        text, "ibs_serve_request_cells", hist));
    EXPECT_EQ(hist.count, 1u);
    EXPECT_EQ(hist.sum, 2.0);
    EXPECT_TRUE(obs::parsePromHistogram(
        text, "ibs_serve_sweep_materialize_us", hist));
    EXPECT_TRUE(obs::parsePromHistogram(
        text, "ibs_serve_sweep_simulate_us", hist));
    EXPECT_EQ(hist.count, 2u); // One sample per cell.
}

TEST(Serve, ReqIdEchoesClientTokenOrAssignsServerId)
{
    Server server(testConfig());
    server.start();
    Client client(server.port());

    // A client-chosen id comes back verbatim.
    client.send(Json::object()
                    .set("type", Json::string("ping"))
                    .set("req_id", Json::string("my-ping-1")));
    Json response;
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.at("type").asString(), "pong");
    EXPECT_EQ(response.at("req_id").asString(), "my-ping-1");

    // Without one, the server assigns "s-<seq>".
    client.send(Json::object().set("type", Json::string("ping")));
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.at("req_id").asString().substr(0, 2), "s-");

    // A sweep echoes the id on every frame: start, cells, done.
    Json configs = Json::array();
    configs.push(Json::string("economy"));
    Json workloads = Json::array();
    for (const std::string &name : testWorkloads())
        workloads.push(Json::string(name));
    client.send(Json::object()
                    .set("type", Json::string("sweep"))
                    .set("suite", Json::string("ibs_mach"))
                    .set("configs", std::move(configs))
                    .set("workloads", std::move(workloads))
                    .set("instructions", Json::number(kInstr))
                    .set("req_id", Json::string("sweep-42")));
    size_t frames = 0;
    for (;;) {
        ASSERT_TRUE(client.receive(response));
        ++frames;
        EXPECT_EQ(response.at("req_id").asString(), "sweep-42")
            << response.at("type").asString();
        if (response.at("type").asString() == "done")
            break;
        ASSERT_NE(response.at("type").asString(), "error");
    }
    EXPECT_EQ(frames, 4u); // start + 2 cells + done.

    // Structured rejections carry the id too.
    client.send(Json::object()
                    .set("type", Json::string("sweep"))
                    .set("suite", Json::string("no_such_suite"))
                    .set("req_id", Json::string("bad-1")));
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.at("type").asString(), "error");
    EXPECT_EQ(response.at("req_id").asString(), "bad-1");
}

TEST(Serve, ServerHistogramAgreesWithClientLatencies)
{
    obs::Registry::global().reset();

    Server server(testConfig());
    server.start();
    Client client(server.port());

    // The same requests timed on both sides of the wire: client
    // wall clocks here, the serve.sweep.latency_us histogram there.
    std::vector<double> latencies;
    for (int i = 0; i < 6; ++i) {
        WallTimer timer;
        ASSERT_TRUE(client
                        .sweep("ibs_mach", {"economy"},
                               testWorkloads(), kInstr)
                        .ok);
        latencies.push_back(timer.seconds());
    }
    std::sort(latencies.begin(), latencies.end());

    obs::PromHistogram hist;
    ASSERT_TRUE(obs::parsePromHistogram(
        client.metricsText(), "ibs_serve_sweep_latency_us", hist));
    ASSERT_EQ(hist.count, 6u);

    // Both sides at log2-bucket resolution: one bucket of slack
    // (2x) absorbs the wire round trip; more is a real divergence.
    for (double q : {0.50, 0.99}) {
        const size_t index = static_cast<size_t>(
            q * static_cast<double>(latencies.size() - 1) + 0.5);
        const double client_edge = static_cast<double>(
            obs::log2BucketUpperEdge(static_cast<uint64_t>(
                latencies[std::min(index, latencies.size() - 1)] *
                1e6)));
        const double server_edge = hist.quantile(q);
        const double hi = std::max(client_edge, server_edge);
        const double lo = std::min(client_edge, server_edge);
        EXPECT_LE(hi / lo, 2.01)
            << "q=" << q << " client<=" << client_edge
            << "us server<=" << server_edge << "us";
    }
}

TEST(Serve, CatalogNamesResolveAndValidate)
{
    EXPECT_GE(configClasses().size(), 8u);
    for (const std::string &name : configClassNames())
        EXPECT_NE(findConfigClass(name), nullptr) << name;
    EXPECT_EQ(findConfigClass("bogus"), nullptr);
    for (const std::string &suite : suiteNames())
        EXPECT_FALSE(suiteByName(suite).empty()) << suite;
    EXPECT_TRUE(suiteByName("bogus").empty());
}

TEST(TraceMemo, EvictsColdEntriesWhenOverBudget)
{
    const std::vector<WorkloadSpec> specs = testSpecs();
    auto build = [&](uint64_t instructions) {
        return [&specs, instructions] {
            return std::make_shared<const SuiteTraces>(
                specs, instructions, "", 0,
                /*log_cache_hits=*/false);
        };
    };
    // A streaming suite retains almost nothing at build time; its
    // run-trace memos accrue as cells replay it (~5000/4 runs * 16 B
    // per workload here) and are charged by refresh(). The budget
    // fits one replayed entry, not two.
    TraceMemo memo(48 * 1024);
    auto a = memo.get("a", build(5000));
    const uint64_t built_bytes = memo.stats().bytes;
    a->runSuite(economyBaseline());
    memo.refresh("a", *a);
    EXPECT_GT(memo.stats().bytes, built_bytes)
        << "replay grew the suite but refresh charged nothing";
    auto b = memo.get("b", build(5000));
    b->runSuite(economyBaseline());
    memo.refresh("b", *b);
    const TraceMemo::Stats stats = memo.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_LE(stats.bytes, 48u * 1024);
    // The evicted suite is still alive through our reference.
    EXPECT_EQ(a->count(), specs.size());
    // "b" is the survivor: getting it again is a hit.
    bool hit = false;
    memo.get("b", build(5000), &hit);
    EXPECT_TRUE(hit);
    // Refreshing an evicted key must not resurrect or recount it.
    memo.refresh("a", *a);
    EXPECT_EQ(memo.stats().entries, 1u);
    EXPECT_EQ(memo.stats().bytes, stats.bytes);
}

TEST(TraceMemo, FailedBuildIsRethrownAndRetried)
{
    TraceMemo memo(1 << 20);
    int calls = 0;
    auto failing = [&calls]()
        -> std::shared_ptr<const SuiteTraces> {
        ++calls;
        throw std::runtime_error("boom");
    };
    EXPECT_THROW(memo.get("k", failing), std::runtime_error);
    EXPECT_THROW(memo.get("k", failing), std::runtime_error);
    EXPECT_EQ(calls, 2); // The failure was not cached.
    EXPECT_EQ(memo.stats().entries, 0u);
}

} // namespace
