#!/bin/sh
# Differential stdout check of streaming run generation: run each
# given bench twice at a small trace length — once with the default
# streaming pipeline (runs generated straight from the workload
# model) and once with IBS_STREAM_GEN=0 forcing
# materialize-then-compress — and fail unless the text outputs are
# byte-identical. Streaming changes only how the run-length trace is
# produced; any stdout difference means the generator and
# compressRuns disagree on the run cuts or the replay semantics.
#
# Usage: check_stream_parity.sh <instructions> <bench-binary> [more...]
#
# Wired in as the ctest "fetch_stream_stdout_diff"
# (tests/CMakeLists.txt); also runnable by hand against every bench:
#
#   scripts/check_stream_parity.sh 50000 build/bench/table*  \
#       build/bench/fig* build/bench/ablation_*

set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <instructions> <bench-binary> [more...]" >&2
    exit 2
fi

instr="$1"
shift

workdir=$(mktemp -d "${TMPDIR:-/tmp}/ibs_stream_parity.XXXXXX")
trap 'rm -rf "$workdir"' EXIT INT TERM

status=0
for bench in "$@"; do
    name=$(basename "$bench")
    # JSON reports land in the scratch dir so the build tree stays
    # clean; only stdout is compared (wall-clock timings in the JSON
    # legitimately differ between runs).
    IBS_BENCH_INSTR="$instr" IBS_BENCH_JSON_DIR="$workdir" \
        IBS_STREAM_GEN=1 \
        "$bench" > "$workdir/$name.stream.txt"
    IBS_BENCH_INSTR="$instr" IBS_BENCH_JSON_DIR="$workdir" \
        IBS_STREAM_GEN=0 \
        "$bench" > "$workdir/$name.materialize.txt"
    if diff -u "$workdir/$name.stream.txt" \
            "$workdir/$name.materialize.txt" > /dev/null; then
        echo "PASS: $name streaming stdout == materialized stdout" \
             "(IBS_BENCH_INSTR=$instr)"
    else
        echo "FAIL: $name stdout differs between IBS_STREAM_GEN=1" \
             "and IBS_STREAM_GEN=0 runs:" >&2
        diff -u "$workdir/$name.stream.txt" \
            "$workdir/$name.materialize.txt" >&2 || true
        status=1
    fi
done
exit $status
