#!/bin/sh
# Smoke-check the machine-readable bench reports: run one fast bench
# with a small trace length, then validate the BENCH_<name>.json it
# wrote against the schema in src/sim/bench_report.h.
#
# Usage: check_bench_json.sh <bench-binary> <validate_bench_json-binary> \
#            [extra bench args...]
#
# Anything after the two binaries is passed through to the bench
# invocation — the "perf_smoke" ctest uses this to hand the
# google-benchmark microbench a --benchmark_min_time override.
#
# Wired in as the ctests "bench_json_schema" and "perf_smoke"
# (tests/CMakeLists.txt); also runnable by hand from a build tree:
#
#   scripts/check_bench_json.sh build/bench/table5_baselines \
#       build/tools/validate_bench_json

set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <bench-binary> <validator-binary> [bench args...]" >&2
    exit 2
fi

bench="$1"
validator="$2"
shift 2
bench_name=$(basename "$bench")

workdir=$(mktemp -d "${TMPDIR:-/tmp}/ibs_bench_json.XXXXXX")
trap 'rm -rf "$workdir"' EXIT INT TERM

# Small trace keeps this ctest fast; the report schema does not
# depend on the trace length.
IBS_BENCH_INSTR=20000 IBS_BENCH_JSON_DIR="$workdir" "$bench" "$@" \
    > "$workdir/text_output.txt"

report="$workdir/BENCH_${bench_name}.json"
if [ ! -f "$report" ]; then
    echo "FAIL: $bench_name did not write BENCH_${bench_name}.json" >&2
    exit 1
fi

# Every bench emits schema v2 (meta block) since PR 4; --min-schema 2
# turns a silent regression to a v1 report into a hard failure.
"$validator" --min-schema 2 "$report"

# The microbench carries several rate comparisons. Prefix matching —
# MinTime suffixes the benchmark names.
if [ "$bench_name" = "microbench" ]; then
    # Hard gates, retried: both ObsOverhead ratios compare two
    # quarter-second timing windows, and a CPU-frequency dip or noisy
    # neighbor during exactly one of them can sink an otherwise-true
    # ratio below the floor. A genuine regression fails every rerun;
    # noise does not survive three.
    attempt=1
    while true; do
        gates_ok=1
        # The disabled observability layer (mode:1) must stay within
        # 10% of the plain loop (mode:0).
        "$validator" --compare-rate "$report" \
            "BM_ObsOverhead/mode:1" "BM_ObsOverhead/mode:0" 0.90 \
            || gates_ok=0
        # Adding a histogram observation per cell (mode:4) on top of
        # enabled counters (mode:2) must also stay within 10% — one
        # observe per engine run is a handful of arithmetic ops.
        "$validator" --compare-rate "$report" \
            "BM_ObsOverhead/mode:4" "BM_ObsOverhead/mode:2" 0.90 \
            || gates_ok=0
        [ "$gates_ok" -eq 1 ] && break
        if [ "$attempt" -ge 3 ]; then
            echo "FAIL: ObsOverhead rate floor missed on all" \
                 "$attempt attempts" >&2
            exit 1
        fi
        attempt=$((attempt + 1))
        echo "WARN: ObsOverhead rate floor missed; remeasuring" \
             "(attempt $attempt)" >&2
        IBS_BENCH_INSTR=20000 IBS_BENCH_JSON_DIR="$workdir" \
            "$bench" "$@" > "$workdir/text_output.txt"
        "$validator" --min-schema 2 "$report"
    done
    # Warn-only: the batched run-length fetch path should beat the
    # scalar per-instruction loop by >=1.5x on a Release build (see
    # EXPERIMENTS.md "Run-length fetch path"). Throughput under a CI
    # load is too noisy to hard-gate, but the schema/cell checks
    # above still hard-fail if the cells go missing.
    "$validator" --compare-rate-warn "$report" \
        "BM_BatchedVsScalar/batched:1" "BM_BatchedVsScalar/batched:0" \
        1.5
    # Warn-only: fused generate+replay (no flat vector, no stored
    # RunTrace) should beat materialize-compress-replay by >=1.15x
    # (EXPERIMENTS.md "Streaming generation").
    "$validator" --compare-rate-warn "$report" \
        "BM_StreamVsMaterialize/streaming:1" \
        "BM_StreamVsMaterialize/streaming:0" 1.15
    # Warn-only: the vectorized tag probe must not lose to the scalar
    # first-match loop it replaced.
    "$validator" --compare-rate-warn "$report" \
        "BM_SimdProbe/simd:1" "BM_SimdProbe/simd:0" 1.0
fi

# Warn-only: the collapsed sweep executor should beat the per-cell
# path by >=2x on the fig4 grid shape (eight of nine configs share
# one L1 capture + LRU stack pass per workload; see EXPERIMENTS.md
# "Sweep collapsing"). Exactness is gated separately and hard — the
# "sweep_collapse_stdout_diff" ctest — so this only watches the
# speed.
if [ "$bench_name" = "sweep_collapse" ]; then
    "$validator" --compare-rate-warn "$report" \
        "BM_CollapsedVsPerCell/collapsed:1" \
        "BM_CollapsedVsPerCell/collapsed:0" 2.0
fi

echo "PASS: ${bench_name} report parses and carries the required keys"
