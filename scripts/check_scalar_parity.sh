#!/bin/sh
# Differential stdout check of the run-length batched fetch path:
# run each given bench twice at a small trace length — once on the
# default batched path and once with IBS_FETCH_SCALAR=1 forcing the
# per-instruction loop — and fail unless the text outputs are
# byte-identical. The batched path is an optimization of the replay
# loop only; any stdout difference means it perturbed simulated
# statistics.
#
# Usage: check_scalar_parity.sh <instructions> <bench-binary> [more...]
#
# Wired in as the ctest "fetch_scalar_stdout_diff"
# (tests/CMakeLists.txt); also runnable by hand against every bench:
#
#   scripts/check_scalar_parity.sh 50000 build/bench/table*  \
#       build/bench/fig* build/bench/ablation_*

set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <instructions> <bench-binary> [more...]" >&2
    exit 2
fi

instr="$1"
shift

workdir=$(mktemp -d "${TMPDIR:-/tmp}/ibs_scalar_parity.XXXXXX")
trap 'rm -rf "$workdir"' EXIT INT TERM

status=0
for bench in "$@"; do
    name=$(basename "$bench")
    # JSON reports land in the scratch dir so the build tree stays
    # clean; only stdout is compared (wall-clock timings in the JSON
    # legitimately differ between runs).
    IBS_BENCH_INSTR="$instr" IBS_BENCH_JSON_DIR="$workdir" \
        "$bench" > "$workdir/$name.batched.txt"
    IBS_BENCH_INSTR="$instr" IBS_BENCH_JSON_DIR="$workdir" \
        IBS_FETCH_SCALAR=1 \
        "$bench" > "$workdir/$name.scalar.txt"
    if diff -u "$workdir/$name.batched.txt" \
            "$workdir/$name.scalar.txt" > /dev/null; then
        echo "PASS: $name batched stdout == scalar stdout" \
             "(IBS_BENCH_INSTR=$instr)"
    else
        echo "FAIL: $name stdout differs between batched and" \
             "IBS_FETCH_SCALAR=1 runs:" >&2
        diff -u "$workdir/$name.batched.txt" \
            "$workdir/$name.scalar.txt" >&2 || true
        status=1
    fi
done
exit $status
