#!/bin/sh
# End-to-end check of the observability layer's zero-perturbation
# contract: run one deterministic bench twice — obs fully off, then
# fully on (counters + trace export + debug logging) — and require
#
#   1. byte-identical stdout between the two runs,
#   2. a trace file that appears and validates as Perfetto
#      traceEvents JSON (validator --trace mode),
#   3. a BENCH_*.json that validates in both runs, with a "counters"
#      object present only in the obs-on report.
#
# Usage: check_obs_trace.sh <bench-binary> <validate_bench_json-binary>
#
# Wired in as the "obs_trace_check" ctest (tests/CMakeLists.txt); also
# runnable by hand from a build tree:
#
#   scripts/check_obs_trace.sh build/bench/table5_baselines \
#       build/tools/validate_bench_json

set -eu

if [ "$#" -ne 2 ]; then
    echo "usage: $0 <bench-binary> <validator-binary>" >&2
    exit 2
fi

bench="$1"
validator="$2"
bench_name=$(basename "$bench")

workdir=$(mktemp -d "${TMPDIR:-/tmp}/ibs_obs_trace.XXXXXX")
trap 'rm -rf "$workdir"' EXIT INT TERM

report="$workdir/BENCH_${bench_name}.json"

# Run 1: observability off (the default environment).
env -u IBS_OBS -u IBS_OBS_TRACE -u IBS_LOG_LEVEL -u IBS_PROGRESS \
    IBS_BENCH_INSTR=20000 IBS_BENCH_JSON_DIR="$workdir" \
    "$bench" > "$workdir/off.txt"
"$validator" "$report"
if grep -q '"counters"' "$report"; then
    echo "FAIL: obs-off report contains a counters section" >&2
    exit 1
fi

# Run 2: everything on — counters, trace export, debug logging.
env -u IBS_PROGRESS \
    IBS_OBS=1 IBS_OBS_TRACE="$workdir/obs_trace.json" \
    IBS_LOG_LEVEL=debug \
    IBS_BENCH_INSTR=20000 IBS_BENCH_JSON_DIR="$workdir" \
    "$bench" > "$workdir/on.txt" 2> "$workdir/on.stderr"

if ! cmp -s "$workdir/off.txt" "$workdir/on.txt"; then
    echo "FAIL: stdout differs between obs-off and obs-on runs" >&2
    diff "$workdir/off.txt" "$workdir/on.txt" >&2 || true
    exit 1
fi

if [ ! -f "$workdir/obs_trace.json" ]; then
    echo "FAIL: IBS_OBS_TRACE did not produce $workdir/obs_trace.json" >&2
    exit 1
fi
"$validator" --trace "$workdir/obs_trace.json"

"$validator" "$report"
if ! grep -q '"counters"' "$report"; then
    echo "FAIL: obs-on report is missing the counters section" >&2
    exit 1
fi

echo "PASS: ${bench_name} output is obs-invariant and the trace validates"
