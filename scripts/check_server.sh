#!/bin/sh
# End-to-end check of the sweep server:
#
#   1. bench: run bench/server_bench (in-process server) and validate
#      the BENCH_server.json it writes (schema + cells present);
#   2. serve: start tools/ibs_serve with obs tracing on, drive it
#      with tools/ibs_loadgen (--check: server-side histogram
#      percentiles must agree with the client's clocks), scrape the
#      metrics endpoint with tools/ibs_stat and validate the
#      Prometheus exposition text, then SIGINT the server
#      mid-service and require a clean drain — exit status 0 and a
#      trace file that validates as Perfetto traceEvents JSON,
#      including one async request span whose flow steps cross pool
#      threads (the server runs with IBS_THREADS=4 so cells fan out
#      even on a single-core machine).
#
# Usage: check_server.sh <ibs_serve> <ibs_loadgen> <server_bench> \
#            <validate_bench_json> <ibs_stat>
#
# Wired in as the "server_check" ctest (tests/CMakeLists.txt); also
# runnable by hand from a build tree:
#
#   scripts/check_server.sh build/tools/ibs_serve \
#       build/tools/ibs_loadgen build/bench/server_bench \
#       build/tools/validate_bench_json build/tools/ibs_stat

set -eu

if [ "$#" -ne 5 ]; then
    echo "usage: $0 <ibs_serve> <ibs_loadgen> <server_bench>" \
         "<validator> <ibs_stat>" >&2
    exit 2
fi

serve="$1"
loadgen="$2"
bench="$3"
validator="$4"
stat="$5"

workdir=$(mktemp -d "${TMPDIR:-/tmp}/ibs_server.XXXXXX")
trap 'rm -rf "$workdir"' EXIT INT TERM

# --- 1. The server benchmark writes a valid report. ----------------
env -u IBS_OBS -u IBS_OBS_TRACE -u IBS_PROGRESS \
    IBS_BENCH_INSTR=20000 IBS_BENCH_JSON_DIR="$workdir" \
    "$bench" > "$workdir/bench.txt"
"$validator" "$workdir/BENCH_server.json"
for grid in latency throughput; do
    if ! grep -q "\"$grid\"" "$workdir/BENCH_server.json"; then
        echo "FAIL: BENCH_server.json has no \"$grid\" cells" >&2
        exit 1
    fi
done

# --- 2. The standalone server drains cleanly on SIGINT. ------------
# IBS_THREADS=4: the cross-thread flow check below needs a worker
# pool even when the host reports one core.
env -u IBS_PROGRESS \
    IBS_SERVE_PORT=0 IBS_OBS=1 IBS_THREADS=4 \
    IBS_OBS_TRACE="$workdir/serve_trace.json" \
    "$serve" > "$workdir/serve.out" 2> "$workdir/serve.err" &
serve_pid=$!

# The first stdout line is "LISTENING <port>".
port=""
for _ in $(seq 1 50); do
    port=$(awk '/^LISTENING /{print $2}' "$workdir/serve.out" \
        2>/dev/null || true)
    [ -n "$port" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "FAIL: ibs_serve exited before listening" >&2
        cat "$workdir/serve.err" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$port" ]; then
    echo "FAIL: ibs_serve never printed its port" >&2
    kill -9 "$serve_pid" 2>/dev/null || true
    exit 1
fi

# --check: the server's sweep-latency histogram must agree with the
# client-side percentiles of the same requests (within one log2
# bucket at p50/p99). One connection on purpose: queueing ahead of
# the server's frame read — inevitable for concurrent clients on a
# busy core — is visible only to the client clock, so the
# comparison is meaningful for sequential requests.
"$loadgen" --port "$port" --connections 1 --requests-per-conn 4 \
    --suite ibs_mach --configs economy,high_performance \
    --workloads gs.mach,nroff.mach --instructions 20000 \
    --check > "$workdir/loadgen.out"

if ! grep -q 'failed=0' "$workdir/loadgen.out"; then
    echo "FAIL: loadgen --check reported failures" >&2
    cat "$workdir/loadgen.out" >&2
    exit 1
fi

# Concurrent load (no --check; see above), the shape the SIGINT
# drain below interrupts.
"$loadgen" --port "$port" --connections 2 --requests-per-conn 2 \
    --suite ibs_mach --configs economy,high_performance \
    --workloads gs.mach,nroff.mach --instructions 20000 \
    > "$workdir/loadgen_load.out"

if ! grep -q 'failed=0' "$workdir/loadgen_load.out"; then
    echo "FAIL: loadgen reported failures" >&2
    cat "$workdir/loadgen_load.out" >&2
    exit 1
fi

# The metrics endpoint serves well-formed Prometheus exposition text
# and ibs_stat renders its one-liner from it.
"$stat" --port "$port" --raw > "$workdir/metrics.txt"
"$validator" --prom "$workdir/metrics.txt"
"$stat" --port "$port" --once > "$workdir/stat.out"
if ! grep -q 'req/s' "$workdir/stat.out"; then
    echo "FAIL: ibs_stat printed no req/s line" >&2
    cat "$workdir/stat.out" >&2
    exit 1
fi

# SIGINT while a request is in flight: the drain must finish the
# stream (the backgrounded loadgen sees no failure) and exit 0. A
# fresh, larger instruction budget forces a cold materialization so
# the request is still running when the signal lands.
"$loadgen" --port "$port" --connections 1 --requests-per-conn 1 \
    --suite ibs_mach --configs economy \
    --workloads gs.mach,nroff.mach --instructions 1000000 \
    > "$workdir/loadgen2.out" &
loadgen_pid=$!
sleep 0.1
kill -INT "$serve_pid"

rc=0
wait "$serve_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "FAIL: ibs_serve exited $rc after SIGINT" >&2
    cat "$workdir/serve.err" >&2
    exit 1
fi
lrc=0
wait "$loadgen_pid" || lrc=$?
if [ "$lrc" -ne 0 ]; then
    echo "FAIL: in-flight request was not drained (loadgen $lrc)" >&2
    cat "$workdir/loadgen2.out" >&2
    exit 1
fi

if [ ! -f "$workdir/serve_trace.json" ]; then
    echo "FAIL: ibs_serve wrote no obs trace" >&2
    exit 1
fi
"$validator" --trace "$workdir/serve_trace.json"
# Request spans are async ("b"/"e") with flow steps that must cross
# at least two pool threads for at least one sweep.
"$validator" --trace-flow 2 "$workdir/serve_trace.json"

if ! grep -q 'served' "$workdir/serve.err"; then
    echo "FAIL: ibs_serve summary line missing" >&2
    exit 1
fi

echo "PASS: server bench validates and ibs_serve drains cleanly on SIGINT"
