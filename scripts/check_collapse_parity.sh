#!/bin/sh
# Differential stdout check of sweep collapsing: run each given bench
# twice at a small trace length — once with the default collapsing
# sweep executor (configs sharing an L1 front end derive their stats
# from one captured miss stream, sim/collapse.h) and once with
# IBS_SWEEP_COLLAPSE=0 forcing every cell through a full simulation —
# and fail unless the text outputs are byte-identical. Collapsing is
# an exact transformation (the derived FetchStats must match the
# simulated ones field for field); any stdout difference means the
# miss-stream replay or the LRU stack pass disagrees with the real
# Cache.
#
# Usage: check_collapse_parity.sh <instructions> <bench-binary> [more...]
#
# Wired in as the ctest "sweep_collapse_stdout_diff"
# (tests/CMakeLists.txt); also runnable by hand against every bench:
#
#   scripts/check_collapse_parity.sh 50000 build/bench/table*  \
#       build/bench/fig* build/bench/ablation_*

set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <instructions> <bench-binary> [more...]" >&2
    exit 2
fi

instr="$1"
shift

workdir=$(mktemp -d "${TMPDIR:-/tmp}/ibs_collapse_parity.XXXXXX")
trap 'rm -rf "$workdir"' EXIT INT TERM

status=0
for bench in "$@"; do
    name=$(basename "$bench")
    # JSON reports land in the scratch dir so the build tree stays
    # clean; only stdout is compared (wall-clock timings and the
    # timing.collapsed flags in the JSON legitimately differ).
    IBS_BENCH_INSTR="$instr" IBS_BENCH_JSON_DIR="$workdir" \
        IBS_SWEEP_COLLAPSE=1 \
        "$bench" > "$workdir/$name.collapsed.txt"
    IBS_BENCH_INSTR="$instr" IBS_BENCH_JSON_DIR="$workdir" \
        IBS_SWEEP_COLLAPSE=0 \
        "$bench" > "$workdir/$name.percell.txt"
    if diff -u "$workdir/$name.collapsed.txt" \
            "$workdir/$name.percell.txt" > /dev/null; then
        echo "PASS: $name collapsed stdout == per-cell stdout" \
             "(IBS_BENCH_INSTR=$instr)"
    else
        echo "FAIL: $name stdout differs between IBS_SWEEP_COLLAPSE=1" \
             "and IBS_SWEEP_COLLAPSE=0 runs:" >&2
        diff -u "$workdir/$name.collapsed.txt" \
            "$workdir/$name.percell.txt" >&2 || true
        status=1
    fi
done
exit $status
