/**
 * @file
 * Schema validator for BENCH_<name>.json reports.
 *
 * Exits 0 when every file given on the command line parses as JSON
 * and carries the required report keys (see src/sim/bench_report.h):
 * schema_version, bench, threads, total_wall_seconds, and a non-empty
 * cells array whose entries each have config, workload, stats and a
 * timing object with wall_seconds / instructions /
 * instructions_per_second. Any violation prints the file and reason
 * and exits 1. Used by scripts/check_bench_json.sh (wired in as a
 * ctest) and handy interactively:
 *
 *   ./build/tools/validate_bench_json BENCH_*.json
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "stats/report.h"

namespace {

using ibs::Json;

bool
fail(const std::string &path, const std::string &why)
{
    std::fprintf(stderr, "%s: %s\n", path.c_str(), why.c_str());
    return false;
}

bool
requireNumber(const Json &obj, const std::string &key,
              const std::string &path, const std::string &where)
{
    const Json *v = obj.find(key);
    if (!v || !v->isNumber())
        return fail(path, where + ": missing numeric \"" + key + "\"");
    return true;
}

bool
validateCell(const Json &cell, size_t index, const std::string &path)
{
    const std::string where = "cells[" + std::to_string(index) + "]";
    if (!cell.isObject())
        return fail(path, where + ": not an object");
    const Json *workload = cell.find("workload");
    if (!workload || !workload->isString())
        return fail(path, where + ": missing string \"workload\"");
    const Json *config = cell.find("config");
    if (!config || !config->isObject())
        return fail(path, where + ": missing object \"config\"");
    const Json *stats = cell.find("stats");
    if (!stats || !stats->isObject())
        return fail(path, where + ": missing object \"stats\"");
    const Json *timing = cell.find("timing");
    if (!timing || !timing->isObject())
        return fail(path, where + ": missing object \"timing\"");
    return requireNumber(*timing, "wall_seconds", path,
                         where + ".timing") &&
        requireNumber(*timing, "instructions", path,
                      where + ".timing") &&
        requireNumber(*timing, "instructions_per_second", path,
                      where + ".timing");
}

bool
validateFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail(path, "cannot open");
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Json doc;
    try {
        doc = Json::parse(buffer.str());
    } catch (const std::exception &e) {
        return fail(path, e.what());
    }
    if (!doc.isObject())
        return fail(path, "top level is not an object");
    if (!requireNumber(doc, "schema_version", path, "top level"))
        return false;
    const Json *bench = doc.find("bench");
    if (!bench || !bench->isString())
        return fail(path, "missing string \"bench\"");
    if (!requireNumber(doc, "threads", path, "top level") ||
        !requireNumber(doc, "total_wall_seconds", path, "top level"))
        return false;
    const Json *cells = doc.find("cells");
    if (!cells || !cells->isArray())
        return fail(path, "missing array \"cells\"");
    if (cells->size() == 0)
        return fail(path, "\"cells\" is empty");
    for (size_t i = 0; i < cells->size(); ++i) {
        if (!validateCell(cells->at(i), i, path))
            return false;
    }
    std::printf("%s: ok (%zu cells)\n", path.c_str(), cells->size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s BENCH_<name>.json [more.json...]\n",
                     argv[0]);
        return 2;
    }
    bool ok = true;
    for (int i = 1; i < argc; ++i)
        ok = validateFile(argv[i]) && ok;
    return ok ? 0 : 1;
}
