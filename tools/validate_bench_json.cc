/**
 * @file
 * Schema validator for BENCH_<name>.json reports and obs trace files.
 *
 * Default mode exits 0 when every file given on the command line
 * parses as JSON and carries the required report keys (see
 * src/sim/bench_report.h): schema_version (1 or 2), bench, threads,
 * total_wall_seconds, and a non-empty cells array whose entries each
 * have config, workload, stats and a timing object with wall_seconds
 * / instructions / instructions_per_second. Schema v2 additionally
 * requires the meta provenance block (string compiler/build_type,
 * numeric schema_version/threads/bench_instructions); the optional
 * "counters" object must be all-numeric when present in either
 * version. Any violation prints the file and reason and exits 1.
 * A leading --min-schema <n> raises the accepted schema floor — the
 * ctests pass --min-schema 2 so a bench regressing to a v1 report
 * (no meta block) fails validation even though v1 documents still
 * parse.
 *
 * Further modes:
 *
 *   --trace <file...>
 *     Validate Perfetto/chrome traceEvents documents as written by
 *     obs::TraceEventSink: a top-level object with a traceEvents
 *     array (possibly empty) of events, each with a string name,
 *     numeric ts/pid/tid, and a "ph" of "X" (needs numeric dur),
 *     "C" (needs numeric args.value), "b"/"e" (async nestable:
 *     needs a string cat and a numeric id), or "s"/"t"/"f" (flow:
 *     needs a numeric id).
 *
 *   --trace-flow <min_tids> <file...>
 *     Everything --trace checks, plus the request-tracing shape the
 *     server promises under IBS_OBS_TRACE: every async begin has a
 *     matching end (by cat+id+name), every flow id has a start and
 *     an end, at least one async span exists, and at least one flow
 *     id touches >= <min_tids> distinct tids (the request really
 *     crossed threads).
 *
 *   --prom <file...>
 *     Validate Prometheus text exposition documents as served by
 *     the sweep server's `metrics` request (obs::validatePromText):
 *     line grammar, TYPE-before-samples, histogram bucket
 *     monotonicity and the mandatory le="+Inf" == _count.
 *
 *   --compare-rate <report> <prefix_a> <prefix_b> <min_ratio>
 *     Assert the rate counter of the first cell whose workload name
 *     starts with <prefix_a> is at least <min_ratio> times that of
 *     the <prefix_b> cell. The rate is stats.fetches_per_second,
 *     falling back to probes_per_second then items_per_second, so
 *     cells measuring something other than engine fetches (the SIMD
 *     tag-probe microbench) compare too. Prefix matching because
 *     google-benchmark appends "/min_time:..." to benchmark names.
 *     Used by scripts/check_bench_json.sh to bound the observability
 *     layer's disabled-mode overhead.
 *
 *   --compare-rate-warn <report> <prefix_a> <prefix_b> <min_ratio>
 *     As --compare-rate, but a ratio below the floor only prints a
 *     WARN line and exits 0; malformed reports or missing cells
 *     still exit 1. For throughput expectations that are meaningful
 *     on a quiet Release build but too noisy to gate CI on (the
 *     batched-vs-scalar fetch-path speedup).
 *
 * Used by scripts/check_bench_json.sh and scripts/check_obs_trace.sh
 * (wired in as ctests) and handy interactively:
 *
 *   ./build/tools/validate_bench_json BENCH_*.json
 *   ./build/tools/validate_bench_json --trace obs_trace.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "obs/prom.h"
#include "stats/report.h"

namespace {

using ibs::Json;

bool
fail(const std::string &path, const std::string &why)
{
    std::fprintf(stderr, "%s: %s\n", path.c_str(), why.c_str());
    return false;
}

bool
requireNumber(const Json &obj, const std::string &key,
              const std::string &path, const std::string &where)
{
    const Json *v = obj.find(key);
    if (!v || !v->isNumber())
        return fail(path, where + ": missing numeric \"" + key + "\"");
    return true;
}

bool
requireString(const Json &obj, const std::string &key,
              const std::string &path, const std::string &where)
{
    const Json *v = obj.find(key);
    if (!v || !v->isString())
        return fail(path, where + ": missing string \"" + key + "\"");
    return true;
}

bool
loadJson(const std::string &path, Json &doc)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail(path, "cannot open");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        doc = Json::parse(buffer.str());
    } catch (const std::exception &e) {
        return fail(path, e.what());
    }
    return true;
}

bool
validateCell(const Json &cell, size_t index, const std::string &path)
{
    const std::string where = "cells[" + std::to_string(index) + "]";
    if (!cell.isObject())
        return fail(path, where + ": not an object");
    const Json *workload = cell.find("workload");
    if (!workload || !workload->isString())
        return fail(path, where + ": missing string \"workload\"");
    const Json *config = cell.find("config");
    if (!config || !config->isObject())
        return fail(path, where + ": missing object \"config\"");
    const Json *stats = cell.find("stats");
    if (!stats || !stats->isObject())
        return fail(path, where + ": missing object \"stats\"");
    const Json *timing = cell.find("timing");
    if (!timing || !timing->isObject())
        return fail(path, where + ": missing object \"timing\"");
    // Optional since the sweep-collapsing change: sweep-executor
    // cells carry a boolean "collapsed" (derived from a shared miss
    // stream vs simulated in full); other cells omit it.
    const Json *collapsed = timing->find("collapsed");
    if (collapsed && collapsed->kind() != Json::Kind::Bool)
        return fail(path, where + ".timing.collapsed is not a bool");
    return requireNumber(*timing, "wall_seconds", path,
                         where + ".timing") &&
        requireNumber(*timing, "instructions", path,
                      where + ".timing") &&
        requireNumber(*timing, "instructions_per_second", path,
                      where + ".timing");
}

/** The schema-v2 provenance block (src/sim/bench_report.h). */
bool
validateMeta(const Json &doc, const std::string &path)
{
    const Json *meta = doc.find("meta");
    if (!meta || !meta->isObject())
        return fail(path, "schema v2: missing object \"meta\"");
    return requireString(*meta, "compiler", path, "meta") &&
        requireString(*meta, "build_type", path, "meta") &&
        requireNumber(*meta, "schema_version", path, "meta") &&
        requireNumber(*meta, "threads", path, "meta") &&
        requireNumber(*meta, "bench_instructions", path, "meta");
}

/** Optional obs::Registry snapshot: flat object, numeric values. */
bool
validateCounters(const Json &doc, const std::string &path)
{
    const Json *counters = doc.find("counters");
    if (!counters)
        return true;
    if (!counters->isObject())
        return fail(path, "\"counters\" is not an object");
    for (const auto &[key, value] : counters->members()) {
        if (!value.isNumber())
            return fail(path,
                        "counters." + key + " is not numeric");
    }
    return true;
}

bool
validateFile(const std::string &path, int min_schema)
{
    Json doc;
    if (!loadJson(path, doc))
        return false;
    if (!doc.isObject())
        return fail(path, "top level is not an object");
    if (!requireNumber(doc, "schema_version", path, "top level"))
        return false;
    const double version = doc.at("schema_version").asNumber();
    if (version != 1 && version != 2)
        return fail(path, "unsupported schema_version " +
                              std::to_string(version));
    if (version < min_schema)
        return fail(path, "schema_version " + std::to_string(version) +
                              " below required minimum " +
                              std::to_string(min_schema));
    const Json *bench = doc.find("bench");
    if (!bench || !bench->isString())
        return fail(path, "missing string \"bench\"");
    if (!requireNumber(doc, "threads", path, "top level") ||
        !requireNumber(doc, "total_wall_seconds", path, "top level"))
        return false;
    if (version == 2 && !validateMeta(doc, path))
        return false;
    if (!validateCounters(doc, path))
        return false;
    const Json *cells = doc.find("cells");
    if (!cells || !cells->isArray())
        return fail(path, "missing array \"cells\"");
    if (cells->size() == 0)
        return fail(path, "\"cells\" is empty");
    for (size_t i = 0; i < cells->size(); ++i) {
        if (!validateCell(cells->at(i), i, path))
            return false;
    }
    std::printf("%s: ok (%zu cells)\n", path.c_str(), cells->size());
    return true;
}

bool
validateTraceEvent(const Json &event, size_t index,
                   const std::string &path)
{
    const std::string where =
        "traceEvents[" + std::to_string(index) + "]";
    if (!event.isObject())
        return fail(path, where + ": not an object");
    if (!requireString(event, "name", path, where) ||
        !requireString(event, "ph", path, where) ||
        !requireNumber(event, "ts", path, where) ||
        !requireNumber(event, "pid", path, where) ||
        !requireNumber(event, "tid", path, where))
        return false;
    const std::string &ph = event.at("ph").asString();
    if (ph == "X")
        return requireNumber(event, "dur", path, where);
    if (ph == "C") {
        const Json *args = event.find("args");
        if (!args || !args->isObject())
            return fail(path, where + ": counter without args");
        return requireNumber(*args, "value", path, where + ".args");
    }
    if (ph == "b" || ph == "e")
        return requireString(event, "cat", path, where) &&
            requireNumber(event, "id", path, where);
    if (ph == "s" || ph == "t" || ph == "f")
        return requireNumber(event, "id", path, where);
    return fail(path, where + ": unknown ph \"" + ph + "\"");
}

bool
validateTraceFile(const std::string &path)
{
    Json doc;
    if (!loadJson(path, doc))
        return false;
    if (!doc.isObject())
        return fail(path, "top level is not an object");
    const Json *events = doc.find("traceEvents");
    if (!events || !events->isArray())
        return fail(path, "missing array \"traceEvents\"");
    for (size_t i = 0; i < events->size(); ++i) {
        if (!validateTraceEvent(events->at(i), i, path))
            return false;
    }
    std::printf("%s: ok (%zu trace events)\n", path.c_str(),
                events->size());
    return true;
}

/** --trace plus the request-tracing shape: balanced async spans,
 *  balanced flows, and at least one flow crossing min_tids tids. */
bool
validateTraceFlow(const std::string &path, long min_tids)
{
    if (!validateTraceFile(path))
        return false;
    Json doc;
    if (!loadJson(path, doc))
        return false;
    const Json &events = *doc.find("traceEvents");

    // Async spans match by (cat, id, name); count begins vs ends.
    std::map<std::string, long> async_open;
    std::map<double, std::set<double>> flow_tids; // id -> tids
    std::map<double, int> flow_starts, flow_ends;
    size_t async_total = 0;
    for (size_t i = 0; i < events.size(); ++i) {
        const Json &e = events.at(i);
        const std::string &ph = e.at("ph").asString();
        if (ph == "b" || ph == "e") {
            const std::string key = e.at("cat").asString() + "\x1f" +
                std::to_string(e.at("id").asNumber()) + "\x1f" +
                e.at("name").asString();
            async_open[key] += ph == "b" ? 1 : -1;
            if (ph == "b")
                ++async_total;
        } else if (ph == "s" || ph == "t" || ph == "f") {
            const double id = e.at("id").asNumber();
            flow_tids[id].insert(e.at("tid").asNumber());
            if (ph == "s")
                ++flow_starts[id];
            if (ph == "f")
                ++flow_ends[id];
        }
    }
    for (const auto &[key, open] : async_open) {
        if (open != 0)
            return fail(path, "unbalanced async span (name '" +
                                  key.substr(key.rfind('\x1f') + 1) +
                                  "': " + std::to_string(open) +
                                  " more begins than ends)");
    }
    if (async_total == 0)
        return fail(path, "no async spans (ph \"b\") in trace");
    size_t crossing = 0;
    for (const auto &[id, tids] : flow_tids) {
        if (flow_starts[id] == 0 || flow_ends[id] == 0)
            return fail(path, "flow id " + std::to_string(id) +
                                  " lacks a start or an end event");
        if (tids.size() >= static_cast<size_t>(min_tids))
            ++crossing;
    }
    if (crossing == 0)
        return fail(path, "no flow spans >= " +
                              std::to_string(min_tids) +
                              " distinct tids");
    std::printf("%s: flow ok (%zu async spans, %zu/%zu flows >= %ld "
                "tids)\n",
                path.c_str(), async_total, crossing, flow_tids.size(),
                min_tids);
    return true;
}

/** --prom: Prometheus exposition well-formedness. */
bool
validatePromFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail(path, "cannot open");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!ibs::obs::validatePromText(buffer.str(), error))
        return fail(path, error);
    std::printf("%s: prom ok\n", path.c_str());
    return true;
}

/** Rate counter (fetches_per_second, else probes_per_second, else
 *  items_per_second) of the first cell whose workload starts with
 *  `prefix`; negative when absent. */
double
findRate(const Json &doc, const std::string &prefix,
         const std::string &path)
{
    const Json *cells = doc.find("cells");
    if (!cells || !cells->isArray()) {
        fail(path, "missing array \"cells\"");
        return -1.0;
    }
    for (size_t i = 0; i < cells->size(); ++i) {
        const Json &cell = cells->at(i);
        const Json *workload = cell.find("workload");
        if (!workload || !workload->isString() ||
            workload->asString().rfind(prefix, 0) != 0)
            continue;
        const Json *stats = cell.find("stats");
        const Json *rate = nullptr;
        if (stats && stats->isObject()) {
            for (const char *name :
                 {"fetches_per_second", "probes_per_second",
                  "items_per_second"}) {
                rate = stats->find(name);
                if (rate && rate->isNumber())
                    break;
            }
        }
        if (!rate || !rate->isNumber()) {
            fail(path, "cell \"" + workload->asString() +
                           "\" has no numeric rate counter "
                           "(fetches/probes/items_per_second)");
            return -1.0;
        }
        return rate->asNumber();
    }
    fail(path, "no cell with workload prefix \"" + prefix + "\"");
    return -1.0;
}

int
compareRate(const std::string &path, const std::string &prefix_a,
            const std::string &prefix_b, double min_ratio,
            bool warn_only)
{
    Json doc;
    if (!loadJson(path, doc) || !doc.isObject())
        return 1;
    const double rate_a = findRate(doc, prefix_a, path);
    const double rate_b = findRate(doc, prefix_b, path);
    if (rate_a < 0.0 || rate_b < 0.0)
        return 1;
    if (rate_b <= 0.0) {
        fail(path, "\"" + prefix_b + "\" rate is zero");
        return 1;
    }
    const double ratio = rate_a / rate_b;
    std::printf("%s: %s = %.3g/s, %s = %.3g/s, ratio %.3f "
                "(floor %.3f)\n",
                path.c_str(), prefix_a.c_str(), rate_a,
                prefix_b.c_str(), rate_b, ratio, min_ratio);
    if (ratio < min_ratio) {
        if (warn_only) {
            std::fprintf(stderr,
                         "%s: WARN: rate ratio %.3f below floor %.3f "
                         "(not failing: --compare-rate-warn)\n",
                         path.c_str(), ratio, min_ratio);
            return 0;
        }
        fail(path, "rate ratio " + std::to_string(ratio) +
                       " below floor " + std::to_string(min_ratio));
        return 1;
    }
    return 0;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--min-schema <n>] BENCH_<name>.json "
                 "[more.json...]\n"
                 "       %s --trace <trace.json> [more.json...]\n"
                 "       %s --trace-flow <min_tids> <trace.json> "
                 "[more.json...]\n"
                 "       %s --prom <metrics.txt> [more.txt...]\n"
                 "       %s --compare-rate <report.json> <prefix_a> "
                 "<prefix_b> <min_ratio>\n"
                 "       %s --compare-rate-warn <report.json> "
                 "<prefix_a> <prefix_b> <min_ratio>\n",
                 argv0, argv0, argv0, argv0, argv0, argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);

    if (std::strcmp(argv[1], "--trace") == 0) {
        if (argc < 3)
            return usage(argv[0]);
        bool ok = true;
        for (int i = 2; i < argc; ++i)
            ok = validateTraceFile(argv[i]) && ok;
        return ok ? 0 : 1;
    }

    if (std::strcmp(argv[1], "--trace-flow") == 0) {
        if (argc < 4)
            return usage(argv[0]);
        char *end = nullptr;
        const long min_tids = std::strtol(argv[2], &end, 10);
        if (end == argv[2] || *end != '\0' || min_tids < 1)
            return usage(argv[0]);
        bool ok = true;
        for (int i = 3; i < argc; ++i)
            ok = validateTraceFlow(argv[i], min_tids) && ok;
        return ok ? 0 : 1;
    }

    if (std::strcmp(argv[1], "--prom") == 0) {
        if (argc < 3)
            return usage(argv[0]);
        bool ok = true;
        for (int i = 2; i < argc; ++i)
            ok = validatePromFile(argv[i]) && ok;
        return ok ? 0 : 1;
    }

    const bool warn_only =
        std::strcmp(argv[1], "--compare-rate-warn") == 0;
    if (std::strcmp(argv[1], "--compare-rate") == 0 || warn_only) {
        if (argc != 6)
            return usage(argv[0]);
        char *end = nullptr;
        const double min_ratio = std::strtod(argv[5], &end);
        if (end == argv[5] || *end != '\0')
            return usage(argv[0]);
        return compareRate(argv[2], argv[3], argv[4], min_ratio,
                           warn_only);
    }

    int first = 1;
    int min_schema = 1;
    if (std::strcmp(argv[1], "--min-schema") == 0) {
        if (argc < 4)
            return usage(argv[0]);
        char *end = nullptr;
        const long v = std::strtol(argv[2], &end, 10);
        if (end == argv[2] || *end != '\0' || v < 1 || v > 2)
            return usage(argv[0]);
        min_schema = static_cast<int>(v);
        first = 3;
    }

    bool ok = true;
    for (int i = first; i < argc; ++i)
        ok = validateFile(argv[i], min_schema) && ok;
    return ok ? 0 : 1;
}
