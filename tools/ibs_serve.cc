/**
 * @file
 * ibs_serve: the long-running sweep server.
 *
 * Binds 127.0.0.1 on $IBS_SERVE_PORT (0 / unset = ephemeral), prints
 * one `LISTENING <port>` line on stdout so harnesses can find the
 * bound port, then serves until SIGINT/SIGTERM or a client's
 * {"type":"shutdown"}. Shutdown is a drain, not an abort: in-flight
 * requests finish their streams, then the obs trace sink (when
 * IBS_OBS_TRACE is set) is flushed and finalized, and the process
 * exits 0.
 *
 * Knobs: IBS_SERVE_PORT, IBS_SERVE_MAX_INFLIGHT,
 * IBS_SERVE_MEMO_BYTES, IBS_SERVE_MAX_INSTR, plus the usual
 * IBS_THREADS / IBS_OBS / IBS_OBS_TRACE / IBS_TRACE_CACHE_DIR.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <thread>

#include "obs/trace_sink.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

extern "C" void
onSignal(int)
{
    g_stop = 1;
}

} // namespace

int
main()
{
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    using namespace ibs;
    serve::Server server;
    try {
        server.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ibs_serve: %s\n", e.what());
        return 1;
    }
    std::printf("LISTENING %u\n", unsigned{server.port()});
    std::fflush(stdout);

    while (!g_stop && !server.stopping())
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));

    server.requestStop();
    server.wait(); // In-flight requests stream to completion.

    const serve::Server::Counters c = server.counters();
    std::fprintf(stderr,
                 "ibs_serve: served %llu requests (%llu sweeps, "
                 "%llu cells, %llu rejected) over %llu connections\n",
                 static_cast<unsigned long long>(c.requests),
                 static_cast<unsigned long long>(c.sweeps),
                 static_cast<unsigned long long>(c.cells),
                 static_cast<unsigned long long>(c.rejected),
                 static_cast<unsigned long long>(c.connections));

    // Finalize the trace now, while the exit path is still orderly.
    if (obs::TraceEventSink *sink = obs::TraceEventSink::global()) {
        if (!sink->write())
            return 1;
    }
    return 0;
}
