/**
 * @file
 * ibs_stat: one-line live view of a running sweep server.
 *
 * Polls the server's `metrics` request (Prometheus text exposition;
 * see src/obs/prom.h and src/serve/protocol.h) and renders the
 * numbers an operator watches during a load test: request rate since
 * the previous poll, in-flight sweeps, total sweeps/cells served,
 * and the server-side p50/p99 of the sweep latency histogram.
 *
 *   ibs_stat --port 8423                 # poll every second, forever
 *   ibs_stat --port 8423 --interval 0.2 --count 50
 *   ibs_stat --port 8423 --once          # single scrape, then exit
 *   ibs_stat --port 8423 --raw           # dump one scrape verbatim
 *
 * --raw prints the exposition text of a single scrape unmodified
 * (for piping into `validate_bench_json --prom` or a file; the CI
 * server check does exactly that) and exits.
 *
 * On a terminal the line redraws in place (carriage return); when
 * stdout is a pipe each sample is its own line, so scripts can
 * capture samples (scripts/check_server.sh does). Exit status is 0
 * after a clean run, 1 when the server cannot be reached or answers
 * with something other than exposition text.
 */

#include <unistd.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/prom.h"
#include "serve/client.h"

namespace {

struct Options
{
    uint16_t port = 0;
    double intervalSeconds = 1.0;
    uint64_t count = 0; ///< 0 = until the connection drops.
    bool once = false;
    bool raw = false; ///< Dump one scrape's exposition text as-is.
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --port <port> [--interval <seconds>] "
                 "[--count <n>] [--once] [--raw]\n",
                 argv0);
    return 2;
}

bool
parseArgs(int argc, char **argv, Options &options)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--port") {
            const char *v = next();
            if (!v)
                return false;
            const long port = std::strtol(v, nullptr, 10);
            if (port <= 0 || port > 65535)
                return false;
            options.port = static_cast<uint16_t>(port);
        } else if (arg == "--interval") {
            const char *v = next();
            if (!v)
                return false;
            options.intervalSeconds = std::strtod(v, nullptr);
            if (!(options.intervalSeconds > 0))
                return false;
        } else if (arg == "--count") {
            const char *v = next();
            if (!v)
                return false;
            options.count = std::strtoull(v, nullptr, 10);
        } else if (arg == "--once") {
            options.once = true;
        } else if (arg == "--raw") {
            options.raw = true;
        } else {
            return false;
        }
    }
    return options.port != 0;
}

/** "2047us" / "1.2ms" / "inf" — compact latency for the one-liner. */
std::string
formatMicros(double us)
{
    char buffer[32];
    if (std::isinf(us)) {
        std::snprintf(buffer, sizeof(buffer), "inf");
    } else if (us >= 1e6) {
        std::snprintf(buffer, sizeof(buffer), "%.2fs", us / 1e6);
    } else if (us >= 1e3) {
        std::snprintf(buffer, sizeof(buffer), "%.1fms", us / 1e3);
    } else {
        std::snprintf(buffer, sizeof(buffer), "%.0fus", us);
    }
    return buffer;
}

double
promValueOr(const std::string &text, const std::string &metric,
            double fallback)
{
    double value = fallback;
    if (!ibs::obs::findPromValue(text, metric, value))
        return fallback;
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parseArgs(argc, argv, options))
        return usage(argv[0]);
    if (options.once)
        options.count = 1;

    const bool tty = ::isatty(STDOUT_FILENO) == 1;
    double prev_requests = -1.0;
    uint64_t samples = 0;
    try {
        ibs::serve::Client client(options.port);
        if (options.raw) {
            const std::string text = client.metricsText();
            std::fwrite(text.data(), 1, text.size(), stdout);
            return 0;
        }
        while (options.count == 0 || samples < options.count) {
            const std::string text = client.metricsText();
            std::string error;
            if (!ibs::obs::validatePromText(text, error)) {
                std::fprintf(stderr,
                             "ibs_stat: malformed metrics: %s\n",
                             error.c_str());
                return 1;
            }
            const double requests =
                promValueOr(text, "ibs_serve_requests", 0.0);
            const double inflight =
                promValueOr(text, "ibs_serve_inflight", 0.0);
            const double sweeps =
                promValueOr(text, "ibs_serve_sweeps", 0.0);
            const double cells =
                promValueOr(text, "ibs_serve_cells", 0.0);
            const double rate =
                prev_requests < 0.0
                    ? 0.0
                    : (requests - prev_requests) /
                          options.intervalSeconds;
            prev_requests = requests;

            std::string p50 = "-", p99 = "-";
            ibs::obs::PromHistogram latency;
            if (ibs::obs::parsePromHistogram(
                    text, "ibs_serve_sweep_latency_us", latency) &&
                latency.count > 0) {
                p50 = formatMicros(latency.quantile(0.50));
                p99 = formatMicros(latency.quantile(0.99));
            }
            std::printf("%sreq/s %7.1f | inflight %2.0f | sweeps "
                        "%6.0f | cells %7.0f | sweep p50 %7s | p99 "
                        "%7s%s",
                        tty ? "\r" : "", rate, inflight, sweeps,
                        cells, p50.c_str(), p99.c_str(),
                        tty ? "" : "\n");
            std::fflush(stdout);

            ++samples;
            if (options.count != 0 && samples >= options.count)
                break;
            std::this_thread::sleep_for(
                std::chrono::duration<double>(
                    options.intervalSeconds));
        }
    } catch (const std::exception &e) {
        if (tty)
            std::printf("\n");
        std::fprintf(stderr, "ibs_stat: %s\n", e.what());
        return 1;
    }
    if (tty)
        std::printf("\n");
    return 0;
}
