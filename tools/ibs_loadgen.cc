/**
 * @file
 * ibs_loadgen: load-generator client for ibs_serve.
 *
 * Opens N concurrent connections to a running server and drives each
 * with a stream of sweep requests, then prints aggregate throughput
 * and latency percentiles. This is the command-line face of the
 * serve::Client; bench/server_bench wraps the same loop to produce
 * BENCH_server.json.
 *
 * Usage:
 *   ibs_loadgen --port P [--connections N] [--requests-per-conn R]
 *               [--suite ibs_mach] [--configs a,b,c]
 *               [--workloads x,y] [--instructions K]
 *               [--check] [--shutdown]
 *
 * Every connection issues the same request R times (after the first
 * completion the server's memo is warm, so the mix measures warm
 * latency with one cold outlier per distinct key). --shutdown sends a
 * shutdown request after the load completes.
 *
 * After the run the server's own sweep-latency histogram
 * (ibs_serve_sweep_latency_us from the `metrics` request) is printed
 * next to the client-side percentiles. Both sides are compared at
 * log2-bucket resolution — the client's exact percentile is
 * bucketized with obs::log2BucketUpperEdge — so two views of the
 * same distribution land on the same edge instead of flaking at
 * power-of-two boundaries. Under --check, a divergence of more than
 * one bucket (i.e. more than 2x) at p50 or p99 is a hard failure
 * with a message naming both sides. --check is meaningful with
 * --connections 1: with concurrent clients on a busy machine, time
 * a request spends queued in the socket buffer before the server
 * reads the frame is visible only to the client clock, so the two
 * views legitimately differ.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <csignal>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/prom.h"
#include "obs/registry.h"
#include "serve/client.h"
#include "stats/report.h"

namespace {

using namespace ibs;

struct Options
{
    uint16_t port = 0;
    unsigned connections = 2;
    unsigned requestsPerConn = 4;
    std::string suite = "ibs_mach";
    std::vector<std::string> configs = {"economy",
                                        "high_performance"};
    std::vector<std::string> workloads; ///< Empty = full suite.
    uint64_t instructions = 200000;
    bool shutdown = false;
    bool check = false; ///< Fail on client/server p50/p99 divergence.
};

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        const size_t end = comma == std::string::npos ? s.size()
                                                      : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --port P [--connections N] "
        "[--requests-per-conn R] [--suite S] [--configs a,b] "
        "[--workloads x,y] [--instructions K] [--check] "
        "[--shutdown]\n",
        argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--port")
            opt.port = static_cast<uint16_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--connections")
            opt.connections = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--requests-per-conn")
            opt.requestsPerConn = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--suite")
            opt.suite = value();
        else if (arg == "--configs")
            opt.configs = splitCommas(value());
        else if (arg == "--workloads")
            opt.workloads = splitCommas(value());
        else if (arg == "--instructions")
            opt.instructions = std::strtoull(value().c_str(),
                                             nullptr, 10);
        else if (arg == "--shutdown")
            opt.shutdown = true;
        else if (arg == "--check")
            opt.check = true;
        else
            usage(argv[0]);
    }
    if (opt.port == 0 || opt.connections == 0 ||
        opt.requestsPerConn == 0)
        usage(argv[0]);
    return opt;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0;
    const size_t index = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(index, sorted.size() - 1)];
}

/**
 * Compare one client-side percentile (seconds) against the server
 * histogram's bucket-edge quantile (microseconds), both at log2
 * bucket resolution. Adjacent buckets agree to within 2x and pass;
 * two or more buckets apart is a real divergence. Prints one line
 * either way; returns false on divergence.
 */
bool
comparePercentile(const char *label, double client_seconds,
                  double server_edge_us)
{
    const uint64_t client_us = static_cast<uint64_t>(
        client_seconds * 1e6);
    const double client_edge = static_cast<double>(
        ibs::obs::log2BucketUpperEdge(client_us));
    const double hi = std::max(client_edge, server_edge_us);
    const double lo = std::min(client_edge, server_edge_us);
    // lo > 0 always (bucket edges are >= 1); 2.01 admits exactly one
    // bucket of slack (adjacent edges ratio ~2.0005).
    const bool agree = hi / lo <= 2.01;
    std::printf("%s client=%.0fus (bucket<=%.0f) server_bucket<=%.0f "
                "%s\n",
                label, static_cast<double>(client_us), client_edge,
                server_edge_us, agree ? "agree" : "DIVERGE");
    return agree;
}

} // namespace

int
main(int argc, char **argv)
{
    std::signal(SIGPIPE, SIG_IGN);
    const Options opt = parseArgs(argc, argv);

    std::mutex mutex;
    std::vector<double> latencies; ///< Seconds, one per request.
    uint64_t completed = 0, rejected = 0, failed = 0, cells = 0;

    WallTimer run_timer;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < opt.connections; ++t) {
        threads.emplace_back([&] {
            try {
                serve::Client client(opt.port);
                for (unsigned r = 0; r < opt.requestsPerConn; ++r) {
                    WallTimer request_timer;
                    serve::Client::SweepResult result =
                        client.sweep(opt.suite, opt.configs,
                                     opt.workloads,
                                     opt.instructions);
                    const double seconds = request_timer.seconds();
                    std::lock_guard<std::mutex> lock(mutex);
                    if (result.ok) {
                        ++completed;
                        cells += result.cells.size();
                        latencies.push_back(seconds);
                    } else if (result.errorCode == 429) {
                        ++rejected;
                    } else {
                        ++failed;
                        std::fprintf(stderr,
                                     "loadgen: request failed "
                                     "(%d): %s\n",
                                     result.errorCode,
                                     result.errorMessage.c_str());
                    }
                }
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(mutex);
                ++failed;
                std::fprintf(stderr, "loadgen: %s\n", e.what());
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    const double wall = run_timer.seconds();

    std::sort(latencies.begin(), latencies.end());
    const double p50 = percentile(latencies, 0.50);
    const double p99 = percentile(latencies, 0.99);
    std::printf("connections=%u requests=%llu rejected=%llu "
                "failed=%llu cells=%llu\n",
                opt.connections,
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(cells));
    std::printf("wall_seconds=%.3f requests_per_second=%.2f "
                "p50_seconds=%.4f p99_seconds=%.4f\n",
                wall,
                wall > 0 ? static_cast<double>(completed) / wall : 0,
                p50, p99);

    // Server-side view of the same requests: the sweep-latency
    // histogram from the metrics endpoint, printed next to the
    // client percentiles (and gated under --check).
    bool check_ok = true;
    if (completed > 0) {
        try {
            serve::Client client(opt.port);
            const std::string text = client.metricsText();
            obs::PromHistogram latency;
            if (obs::parsePromHistogram(
                    text, "ibs_serve_sweep_latency_us", latency) &&
                latency.count > 0) {
                const bool ok50 = comparePercentile(
                    "p50:", p50, latency.quantile(0.50));
                const bool ok99 = comparePercentile(
                    "p99:", p99, latency.quantile(0.99));
                check_ok = ok50 && ok99;
                if (!check_ok && opt.check)
                    std::fprintf(
                        stderr,
                        "loadgen: server-side sweep latency "
                        "percentiles diverge from client-side by "
                        "more than 2x (see the p50:/p99: lines "
                        "above); the server histogram and the "
                        "client clock disagree about the same "
                        "requests\n");
            } else {
                check_ok = false;
                if (opt.check)
                    std::fprintf(
                        stderr,
                        "loadgen: server metrics carry no "
                        "ibs_serve_sweep_latency_us histogram — "
                        "cannot cross-check percentiles\n");
            }
        } catch (const std::exception &e) {
            check_ok = false;
            if (opt.check)
                std::fprintf(stderr,
                             "loadgen: metrics scrape failed: %s\n",
                             e.what());
        }
    }

    if (opt.shutdown) {
        try {
            serve::Client client(opt.port);
            client.shutdown();
        } catch (const std::exception &e) {
            std::fprintf(stderr, "loadgen: shutdown: %s\n",
                         e.what());
        }
    }
    if (failed != 0)
        return 1;
    return opt.check && !check_ok ? 1 : 0;
}
